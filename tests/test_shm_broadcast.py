"""The zero-copy broadcast plane must be invisible in the data.

The broadcast contract: whether a broadcast value travels through a
shared-memory segment (the default where supported), through pickle
(``shm_broadcast=False``, or any platform without
``multiprocessing.shared_memory``), or through a chaos-forced mid-run
fallback from one plane to the other, every algorithm returns exactly
the pairs and exactly the ``JoinStats`` of the other planes.  The plane
may only ever show up in the metrics, never in the data.

Pinned the same three ways as ``test_spill_equivalence``:

* hypothesis: random tiny-domain datasets x all four join variants x
  both token formats, shm plane vs pickle plane vs brute force;
* the parallel backends (threads and processes) on both planes agree
  with clean serial, including under seeded segment-unlink chaos and
  under worker-kill chaos (respawned workers re-attach for free);
* segment hygiene: every run ends with zero live and zero leaked
  segments — no shared-memory segment outlives a join.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import similarity_join
from repro.joins.bruteforce import bruteforce_join
from repro.minispark import Context, FaultPlan, RetryPolicy
from repro.minispark import broadcast as broadcast_module
from repro.minispark.broadcast import Broadcast, handles_only, shm_available
from repro.rankings import Ranking, RankingDataset
from repro.rankings.encoding import ColumnarStore

K = 5
DOMAIN = list(range(11))

ALGORITHMS = ("vj", "vj-nl", "cl", "cl-p")

#: No sleeping between attempts: the data contract is what's under test.
_fast_retry = RetryPolicy(backoff_base_seconds=0.0)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


def datasets(min_size=2, max_size=12):
    ranking = st.permutations(DOMAIN).map(lambda p: tuple(p[:K]))
    return st.lists(ranking, min_size=min_size, max_size=max_size).map(
        lambda rows: RankingDataset(
            [Ranking(i, row) for i, row in enumerate(rows)]
        )
    )


def _pairs(result):
    """Full result tuples, sorted — None distances must match too."""
    return sorted(
        result.pairs, key=lambda t: (t[0], t[1], t[2] is None, t[2] or 0.0)
    )


def _run(dataset, theta, algorithm, token_format, ctx):
    kwargs = {"partition_threshold": 6} if algorithm == "cl-p" else {}
    if algorithm in ("cl", "cl-p"):
        kwargs["theta_c"] = min(0.03, theta)
    return similarity_join(
        dataset, theta, algorithm=algorithm, ctx=ctx,
        token_format=token_format, **kwargs,
    )


def _assert_clean(ctx):
    assert ctx.broadcasts.live_segments() == 0
    assert ctx.broadcasts.leaked_segments() == 0


# ---------------------------------------------------------------------------
# Plane equivalence


@needs_shm
@settings(max_examples=25, deadline=None)
@given(
    datasets(),
    st.sampled_from([0.0, 0.1, 0.2, 0.4]),
    st.sampled_from(ALGORITHMS),
    st.sampled_from(["compact", "legacy"]),
)
def test_shm_run_equals_pickle_run_equals_bruteforce(
    dataset, theta, algorithm, token_format
):
    expected = bruteforce_join(dataset, theta)
    shm_ctx = Context(3, shm_broadcast=True)
    shm = _run(dataset, theta, algorithm, token_format, shm_ctx)
    pickle_ctx = Context(3, shm_broadcast=False)
    pickled = _run(dataset, theta, algorithm, token_format, pickle_ctx)
    assert _pairs(shm) == _pairs(pickled) == _pairs(expected)
    assert vars(shm.stats) == vars(pickled.stats)
    _assert_clean(shm_ctx)
    _assert_clean(pickle_ctx)
    assert pickle_ctx.broadcasts.summary()["segments"] == 0


@needs_shm
@pytest.mark.parametrize("executor", ["threads", "processes"])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_plane_equivalence_on_parallel_backends(
    small_dblp, executor, algorithm
):
    clean = _run(small_dblp, 0.2, algorithm, "compact", Context(4))
    for shm in (True, False):
        ctx = Context(4, executor=executor, max_workers=2,
                      shm_broadcast=shm)
        result = _run(small_dblp, 0.2, algorithm, "compact", ctx)
        assert _pairs(result) == _pairs(clean)
        assert vars(result.stats) == vars(clean.stats)
        _assert_clean(ctx)
        summary = ctx.broadcasts.summary()
        if shm:
            assert summary["segments"] > 0  # the plane really engaged


@needs_shm
@pytest.mark.parametrize("token_format", ["compact", "legacy"])
def test_plane_equivalence_legacy_format_on_processes(
    small_dblp, token_format
):
    clean = _run(small_dblp, 0.2, "vj", token_format, Context(4))
    ctx = Context(4, executor="processes", max_workers=2,
                  shm_broadcast=True)
    result = _run(small_dblp, 0.2, "vj", token_format, ctx)
    assert _pairs(result) == _pairs(clean)
    assert vars(result.stats) == vars(clean.stats)
    _assert_clean(ctx)


# ---------------------------------------------------------------------------
# Chaos: segment unlinked under the join's feet -> pickle fallback


@needs_shm
@pytest.mark.parametrize("executor", ["serial", "processes"])
def test_unlinked_segment_falls_back_to_pickle(small_dblp, executor):
    clean = _run(small_dblp, 0.2, "vj", "compact", Context(4))
    plan = FaultPlan(seed=3, shm_unlink_rate=1.0)
    ctx = Context(4, executor=executor, max_workers=2, chaos=plan,
                  shm_broadcast=True, retry_policy=_fast_retry)
    chaotic = _run(small_dblp, 0.2, "vj", "compact", ctx)
    assert _pairs(chaotic) == _pairs(clean)
    assert vars(chaotic.stats) == vars(clean.stats)
    _assert_clean(ctx)
    summary = ctx.broadcasts.summary()
    assert summary["faults_injected"] > 0  # faults really happened
    assert summary["fallbacks"] > 0  # ... and were recovered from
    # The ladder is recorded the same way spill->memory fallbacks are.
    assert any(
        f["from"] == "shm" and f["to"] == "pickle"
        for f in ctx.metrics.fallbacks
    )


@needs_shm
@given(
    datasets(),
    st.sampled_from([0.1, 0.2, 0.4]),
    st.integers(min_value=0, max_value=2**16),
    st.sampled_from([0.3, 1.0]),
    st.sampled_from(ALGORITHMS),
)
@settings(max_examples=25, deadline=None)
def test_unlink_chaos_run_equals_clean(dataset, theta, seed, rate, algorithm):
    clean = _run(dataset, theta, algorithm, "compact", Context(3))
    plan = FaultPlan(seed=seed, shm_unlink_rate=rate)
    ctx = Context(3, chaos=plan, shm_broadcast=True,
                  retry_policy=_fast_retry)
    chaotic = _run(dataset, theta, algorithm, "compact", ctx)
    assert _pairs(chaotic) == _pairs(clean)
    assert vars(chaotic.stats) == vars(clean.stats)
    _assert_clean(ctx)


# ---------------------------------------------------------------------------
# Worker respawns re-attach from the registry


@needs_shm
def test_respawned_workers_reattach_for_free(small_dblp):
    clean = _run(small_dblp, 0.2, "vj", "compact", Context(4))
    plan = FaultPlan(seed=2, kill_rate=0.4, transient_rate=0.2)
    ctx = Context(4, executor="processes", max_workers=2, task_retries=2,
                  chaos=plan, max_worker_respawns=64,
                  shm_broadcast=True, retry_policy=_fast_retry)
    chaotic = _run(small_dblp, 0.2, "vj", "compact", ctx)
    assert _pairs(chaotic) == _pairs(clean)
    assert vars(chaotic.stats) == vars(clean.stats)
    _assert_clean(ctx)
    summary = ctx.broadcasts.summary()
    # Forked workers (respawned ones included) inherit the registry
    # copy-on-write: nobody ever re-pickles a payload or re-maps a
    # segment, so respawn cost is independent of broadcast size.
    assert summary["payload_pickles"] == 0
    assert summary["attaches"] == 0


# ---------------------------------------------------------------------------
# Accounting: handles ship, payloads don't


@needs_shm
def test_per_stage_broadcast_bytes_are_handle_sized(small_dblp):
    shm_ctx = Context(4, shm_broadcast=True)
    _run(small_dblp, 0.2, "vj", "compact", shm_ctx)
    pickle_ctx = Context(4, shm_broadcast=False)
    _run(small_dblp, 0.2, "vj", "compact", pickle_ctx)

    def stage_bytes(ctx):
        return {
            stage.name: stage.broadcast_bytes
            for job in ctx.metrics.jobs
            for stage in job.stages
            if stage.broadcast_handles
        }

    shm_stages = stage_bytes(shm_ctx)
    pickle_stages = stage_bytes(pickle_ctx)
    assert shm_stages, "no stage referenced a broadcast?"
    # On the shm plane a stage ships segment names, not payloads: every
    # charged stage stays within a few hundred bytes per handle.
    for name, nbytes in shm_stages.items():
        assert nbytes < 1024, (name, nbytes)
    # The pickle plane charges the payload per referencing stage — the
    # columnar store dwarfs its handle.
    assert max(pickle_stages.values()) > max(shm_stages.values())
    assert (
        shm_ctx.metrics.combined().total_broadcast_bytes
        < pickle_ctx.metrics.combined().total_broadcast_bytes
    )


@needs_shm
def test_broadcast_bytes_do_not_scale_with_stage_count(small_dblp):
    """Two joins on one context: per-stage cost stays flat (dedup+handles)."""
    ctx = Context(4, shm_broadcast=True)
    _run(small_dblp, 0.2, "vj", "compact", ctx)
    one_join = ctx.metrics.combined().total_broadcast_bytes
    _run(small_dblp, 0.2, "vj", "compact", ctx)
    two_joins = ctx.metrics.combined().total_broadcast_bytes
    _assert_clean(ctx)
    # Each join publishes its own segments, so the total may double —
    # but never blow up with the payload size.
    charged = [
        stage.broadcast_bytes
        for job in ctx.metrics.jobs
        for stage in job.stages
        if stage.broadcast_handles
    ]
    assert all(nbytes < 1024 for nbytes in charged)
    assert two_joins <= 2 * one_join + 1024


def test_identity_dedup_returns_same_handle():
    ctx = Context(2)
    value = np.arange(100, dtype=np.int64)
    first = ctx.broadcast(value)
    second = ctx.broadcast(value)
    assert first is second
    assert ctx.broadcasts.counters.dedup_hits == 1
    assert ctx.broadcasts.summary()["segments"] <= 1
    ctx.broadcasts.release_all()
    _assert_clean(ctx)


@needs_shm
def test_managed_broadcast_pickles_as_a_handle():
    ctx = Context(2, shm_broadcast=True)
    payload = np.arange(100_000, dtype=np.int64)  # 800 KB
    handle = ctx.broadcast(payload)
    try:
        blob = pickle.dumps(handle)
        assert len(blob) < 512, len(blob)
        clone = pickle.loads(blob)
        np.testing.assert_array_equal(clone.value, payload)
        with handles_only():
            assert len(pickle.dumps(handle)) < 512
    finally:
        ctx.broadcasts.release_all()
    _assert_clean(ctx)


def test_bare_broadcast_still_pickles_by_value():
    bare = Broadcast([1, 2, 3])
    clone = pickle.loads(pickle.dumps(bare))
    assert clone.value == [1, 2, 3]


# ---------------------------------------------------------------------------
# Platform fallback: no shared_memory module at all


def test_without_shared_memory_module_everything_still_works(
    small_dblp, monkeypatch
):
    monkeypatch.setattr(broadcast_module, "_shared_memory", None)
    assert not shm_available()
    clean = _run(small_dblp, 0.2, "vj", "compact", Context(4))
    ctx = Context(4)  # auto-detect lands on the pickle plane
    assert not ctx.broadcasts.enabled
    result = _run(small_dblp, 0.2, "vj", "compact", ctx)
    assert _pairs(result) == _pairs(clean)
    assert ctx.broadcasts.summary()["segments"] == 0
    _assert_clean(ctx)


# ---------------------------------------------------------------------------
# ColumnarStore shared-memory codec


@needs_shm
def test_columnar_store_shm_roundtrip_is_byte_identical(small_dblp):
    from repro.joins.compact import compact_ordering

    ctx = Context(2, shm_broadcast=False)
    rdd = ctx.parallelize(small_dblp.rankings, 2)
    _ordered, store_handle, _encoder = compact_ordering(ctx, rdd, "overlap")
    store = store_handle.value

    meta, buffers = store.to_shm()
    offsets = []
    cursor = 0
    blob = bytearray()
    for buf in buffers:
        arr = np.ascontiguousarray(buf)
        pad = (-cursor) % 8
        blob.extend(b"\0" * pad)
        cursor += pad
        offsets.append(cursor)
        blob.extend(arr.tobytes())
        cursor += arr.nbytes
    meta = dict(meta, offsets=offsets)
    clone = ColumnarStore.from_shm(meta, memoryview(bytes(blob)))

    np.testing.assert_array_equal(clone.rids, store.rids)
    np.testing.assert_array_equal(clone.codes, store.codes)
    assert clone.num_codes == store.num_codes
    assert clone.row_of == store.row_of
    assert not clone.codes.flags.writeable  # views are read-only
    for rid in store.rids[:10]:
        rid = int(rid)
        assert clone[rid].ranking.items == store[rid].ranking.items
    np.testing.assert_array_equal(
        clone.rows_of(store.rids[:5]), store.rows_of(store.rids[:5])
    )
    ctx.broadcasts.release_all()
