"""Unit tests of the out-of-core shuffle subsystem (minispark.spill).

Covers the segment file format (round-trip, multi-frame streaming, exact
CRC32 detection of deletion/corruption/truncation), the SpillManager's
budget accounting (only-charge-if-fits: tracked memory never exceeds the
budget), the degradation ladder (injected ChaosDiskError is retried,
genuine ENOSPC falls back to in-memory with a recorded fallback), spill
hygiene (no leaked segment files after any join), and the lineage
recovery path for damaged spill files.
"""

import errno
import os

import pytest

from repro import similarity_join
from repro.minispark import (
    ChaosDiskError,
    Context,
    FaultPlan,
    RetryPolicy,
    SpillCorruptionError,
    SpilledBucket,
    SpillManager,
)
from repro.minispark import spill as spill_module
from repro.minispark.scheduler import estimate_shuffle_bytes, shuffle_checksum
from repro.minispark.spill import (
    FRAME_RECORDS,
    damage_segment,
    read_segment,
    validate_segment,
    write_segment,
)

_fast_retry = RetryPolicy(backoff_base_seconds=0.0)


# ----------------------------------------------------------- segment files


def test_segment_round_trip(tmp_path):
    records = [(i, f"value-{i}") for i in range(37)]
    segment = write_segment(str(tmp_path / "a.seg"), "rdd1/b0", [records])
    assert segment.records == len(records)
    assert segment.nbytes == os.path.getsize(segment.path)
    assert validate_segment(segment)
    assert list(read_segment(segment)) == records


def test_segment_multi_frame_and_multi_part(tmp_path):
    n = FRAME_RECORDS * 2 + 17  # forces several length-prefixed frames
    parts = [[(i, i * i) for i in range(n)], [], [("tail", None)]]
    segment = write_segment(str(tmp_path / "b.seg"), "rdd1/b1", parts)
    assert segment.records == n + 1
    assert list(read_segment(segment)) == parts[0] + parts[2]


def test_empty_segment_round_trip(tmp_path):
    segment = write_segment(str(tmp_path / "empty.seg"), "rdd1/b2", [[]])
    assert segment.records == 0
    assert validate_segment(segment)
    assert list(read_segment(segment)) == []


@pytest.mark.parametrize("kind", ["delete", "corrupt", "truncate"])
def test_damage_is_detected(tmp_path, kind):
    records = [(i, "x" * 50) for i in range(200)]
    segment = write_segment(str(tmp_path / "c.seg"), "rdd1/b3", [records])
    damage_segment(segment.path, kind)
    assert not validate_segment(segment)
    with pytest.raises((SpillCorruptionError, OSError)):
        list(read_segment(segment))


def test_spilled_bucket_len_iter_validate_delete(tmp_path):
    records = [(k, k) for k in range(99)]
    segment = write_segment(str(tmp_path / "d.seg"), "rdd2/b0", [records])
    bucket = SpilledBucket([segment], segment.records)
    assert len(bucket) == 99
    assert list(bucket) == records
    assert bucket.nbytes == segment.nbytes
    assert bucket.validate()
    bucket.delete()
    assert not os.path.exists(segment.path)
    assert not bucket.validate()


def test_checksum_and_bytes_are_exact_for_spilled_buckets(tmp_path):
    records = [(i, "payload" * 3) for i in range(150)]
    segment = write_segment(str(tmp_path / "e.seg"), "rdd3/b0", [records])
    bucket = SpilledBucket([segment], segment.records)
    # Exact on-disk size, no stride sampling involved.
    assert estimate_shuffle_bytes([bucket], 0) == segment.nbytes
    fingerprint = shuffle_checksum([bucket], 64)
    # The fingerprint folds the full-file CRC: corrupting one byte that
    # stride sampling would miss still changes the spilled checksum.
    damage_segment(segment.path, "corrupt")
    assert not bucket.validate()
    assert shuffle_checksum([bucket], 64) == fingerprint  # metadata crc
    # ... which is exactly why validation re-reads the file: the stored
    # metadata cannot observe disk rot, the re-read CRC32 can.


# --------------------------------------------------------- budget manager


def test_merge_bucket_charges_until_budget_then_spills(tmp_path):
    manager = SpillManager(4096, tmp_path)
    outputs: list = []
    small = [[("k", "v")] * 4]
    manager.merge_bucket("rdd1", outputs, 0, small, sample=64)
    assert isinstance(outputs[0], list)
    assert manager.tracked_bytes > 0
    big = [[("key-%d" % i, "x" * 64) for i in range(512)]]
    manager.merge_bucket("rdd1", outputs, 1, big, sample=64)
    assert isinstance(outputs[1], SpilledBucket)
    assert list(outputs[1]) == big[0]
    assert manager.tracked_bytes <= 4096
    assert manager.counters.peak_tracked_bytes <= 4096
    assert manager.counters.spill_files == 1
    manager.release(outputs)
    assert manager.tracked_bytes == 0
    manager.cleanup()
    assert manager.leaked_files() == 0


def test_merge_bucket_adopts_worker_segments_in_task_order(tmp_path):
    manager = SpillManager(1, tmp_path)
    spilled = manager.spill_task_outputs("rdd9", 1, [[(2, "b"), (3, "c")]])
    assert isinstance(spilled[0], SpilledBucket)
    outputs: list = []
    parts = [[(1, "a")], spilled[0], [(4, "d")]]
    manager.merge_bucket("rdd9", outputs, 0, parts, sample=64)
    assert isinstance(outputs[0], SpilledBucket)
    assert list(outputs[0]) == [(1, "a"), (2, "b"), (3, "c"), (4, "d")]
    manager.cleanup()


def test_injected_write_errors_are_retried_not_fatal(tmp_path):
    plan = FaultPlan(seed=5, spill_write_error_rate=1.0, max_faults_per_task=2)
    manager = SpillManager(1, tmp_path, chaos=plan)
    bucket = manager.spill_bucket("rdd1/b0", [[("k", "v")] * 10])
    assert bucket is not None  # the fault cap guarantees a clean attempt
    assert manager.counters.write_errors == plan.max_faults_per_task
    assert not manager.disabled
    assert list(bucket) == [("k", "v")] * 10
    manager.cleanup()


def test_genuine_enospc_disables_spilling_and_records_fallback(
    tmp_path, monkeypatch
):
    from repro.minispark.metrics import MetricsCollector

    def no_space(path, key, parts):
        raise OSError(errno.ENOSPC, "No space left on device")

    monkeypatch.setattr(spill_module, "write_segment", no_space)
    metrics = MetricsCollector()
    manager = SpillManager(1, tmp_path, metrics=metrics)
    outputs: list = []
    manager.merge_bucket("rdd1", outputs, 0, [[("k", "v")] * 10], sample=64)
    # Graceful degradation: the bucket stays in memory, nothing raises.
    assert outputs[0] == [("k", "v")] * 10
    assert manager.disabled
    assert metrics.fallbacks and metrics.fallbacks[0]["from"] == "spill"
    assert metrics.fallbacks[0]["to"] == "memory"
    assert manager.counters.memory_fallbacks == 1
    manager.cleanup()


def test_chaos_disk_error_is_an_enospc_oserror():
    error = ChaosDiskError("rdd1/b0")
    assert isinstance(error, OSError)
    assert error.errno == errno.ENOSPC


# ------------------------------------------------------------ context API


def test_context_budget_validation():
    with pytest.raises(ValueError):
        Context(memory_budget_bytes=0)
    with pytest.raises(ValueError):
        Context(memory_budget_bytes=-5)
    with pytest.raises(ValueError):
        Context(spill_dir="/tmp/nope")  # spill_dir needs a budget
    assert Context().spill is None
    assert Context().spill_summary() == {}


def test_similarity_join_rejects_budget_with_explicit_ctx(paper_rankings):
    with pytest.raises(ValueError, match="memory_budget_bytes"):
        similarity_join(
            paper_rankings, 0.3, algorithm="vj", ctx=Context(),
            memory_budget_bytes=1,
        )


# -------------------------------------------------- end-to-end behaviour


def test_spill_forced_join_is_identical_and_leaks_nothing(small_dblp):
    clean = similarity_join(small_dblp, 0.2, algorithm="cl")
    ctx = Context(memory_budget_bytes=1)
    spilled = similarity_join(small_dblp, 0.2, algorithm="cl", ctx=ctx)
    assert sorted(spilled.pairs) == sorted(clean.pairs)
    assert vars(spilled.stats) == vars(clean.stats)
    summary = ctx.spill_summary()
    assert summary["spill_files"] > 0 and summary["spilled_bytes"] > 0
    # The join's finally-cleanup ran: no segment file survives.
    assert ctx.spill.leaked_files() == 0


def test_peak_tracked_memory_stays_under_budget(small_dblp):
    budget = 64 * 1024
    ctx = Context(memory_budget_bytes=budget, tracer=True)
    result = similarity_join(small_dblp, 0.2, algorithm="vj", ctx=ctx)
    assert len(result) > 0
    digest = ctx.tracer.digest()
    assert "spill" in digest
    assert digest["spill"]["budget_bytes"] == budget
    assert digest["spill"]["peak_tracked_bytes"] <= budget
    assert ctx.spill.leaked_files() == 0


def test_digest_has_no_spill_section_without_budget(small_dblp):
    ctx = Context(tracer=True)
    similarity_join(small_dblp, 0.2, algorithm="vj", ctx=ctx)
    assert "spill" not in ctx.tracer.digest()


def test_spill_dir_is_respected_and_cleaned(small_dblp, tmp_path):
    base = tmp_path / "spills"
    ctx = Context(memory_budget_bytes=1, spill_dir=base)
    similarity_join(small_dblp, 0.2, algorithm="vj", ctx=ctx)
    assert ctx.spill_summary()["spill_files"] > 0
    leftovers = [
        name
        for _root, _dirs, files in os.walk(base)
        for name in files
    ] if base.exists() else []
    assert leftovers == []


def test_damaged_spill_file_recovers_via_lineage(tmp_path):
    ctx = Context(4, memory_budget_bytes=1, spill_dir=tmp_path)
    data = ctx.parallelize([(i % 5, i) for i in range(200)], 4)
    grouped = data.group_by_key()
    first = sorted((k, sorted(v)) for k, v in grouped.collect())
    dep = grouped.dependencies[0]
    spilled = [b for b in dep.outputs if isinstance(b, SpilledBucket)]
    assert spilled, "tiny budget must force spilling"
    damage_segment(spilled[0].segments[0].path, "corrupt")
    recomputed = sorted((k, sorted(v)) for k, v in grouped.collect())
    assert recomputed == first
    assert sum(j.stages_recomputed for j in ctx.metrics.jobs) >= 1
    ctx.spill.cleanup()
    assert ctx.spill.leaked_files() == 0
