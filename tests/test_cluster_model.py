"""The cluster cost model: makespan scheduling and job simulation."""

import pytest

from repro.minispark import (
    TABLE3_CONFIG,
    ClusterConfig,
    ClusterModel,
    Context,
    CostModel,
)
from repro.minispark.metrics import JobMetrics


class TestClusterConfig:
    def test_table3_defaults(self):
        """Table 3: 24 executor instances x 5 cores, 8 GB / 12 GB memory."""
        assert TABLE3_CONFIG.executor_instances == 24
        assert TABLE3_CONFIG.executor_cores == 5
        assert TABLE3_CONFIG.executor_memory_gb == 8
        assert TABLE3_CONFIG.driver_memory_gb == 12
        assert TABLE3_CONFIG.slots == 120

    def test_for_nodes_figure7_shape(self):
        """Figure 7 reduces to 3 cores per executor, count left to YARN."""
        four = ClusterConfig.for_nodes(4)
        eight = ClusterConfig.for_nodes(8)
        assert four.executor_cores == 3
        assert eight.slots == 2 * four.slots


class TestMakespan:
    def test_single_slot_is_sum(self):
        assert ClusterModel.makespan([1.0, 2.0, 3.0], 1) == 6.0

    def test_many_slots_is_max(self):
        assert ClusterModel.makespan([1.0, 2.0, 3.0], 10) == 3.0

    def test_lpt_two_slots(self):
        # 3,3,2,2 on 2 slots: LPT gives {3,2} {3,2} -> 5.
        assert ClusterModel.makespan([3.0, 3.0, 2.0, 2.0], 2) == 5.0

    def test_empty_tasks(self):
        assert ClusterModel.makespan([], 4) == 0.0

    def test_monotone_in_slots(self):
        tasks = [0.5, 1.5, 0.7, 2.0, 0.1, 0.9]
        values = [ClusterModel.makespan(tasks, s) for s in range(1, 8)]
        assert values == sorted(values, reverse=True)

    def test_never_below_max_task(self):
        tasks = [5.0, 0.1, 0.1]
        assert ClusterModel.makespan(tasks, 100) == 5.0

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            ClusterModel.makespan([1.0], 0)


class TestSimulate:
    def test_stage_seconds_components(self):
        model = ClusterModel(
            ClusterConfig(num_nodes=1, executor_instances=1, executor_cores=1),
            CostModel(
                task_latency_seconds=0.1,
                shuffle_record_seconds=0.01,
                stage_overhead_seconds=1.0,
            ),
        )
        # One slot: makespan = (1 + 0.1) + (2 + 0.1); network = 100 * 0.01.
        assert model.stage_seconds([1.0, 2.0], 100) == pytest.approx(
            1.0 + 3.2 + 1.0
        )

    def test_more_nodes_cheaper_network(self):
        cost = CostModel(shuffle_record_seconds=0.001)
        slow = ClusterModel(ClusterConfig(num_nodes=1), cost)
        fast = ClusterModel(ClusterConfig(num_nodes=10), cost)
        assert fast.stage_seconds([], 1000) < slow.stage_seconds([], 1000)

    def test_simulate_sums_stages(self):
        model = ClusterModel(ClusterConfig())
        job = JobMetrics("j")
        stage_a = job.new_stage("a")
        stage_a.task_seconds.append(1.0)
        stage_b = job.new_stage("b")
        stage_b.task_seconds.append(2.0)
        assert model.simulate(job) == pytest.approx(
            model.stage_seconds([1.0], 0) + model.stage_seconds([2.0], 0)
        )

    def test_context_simulated_seconds(self):
        ctx = Context(4)
        ctx.parallelize(range(100), 4).map(lambda x: x * x).collect()
        default = ctx.simulated_seconds()
        tiny = ctx.simulated_seconds(
            ClusterConfig(num_nodes=1, executor_instances=1, executor_cores=1)
        )
        assert default > 0
        assert tiny >= default

    def test_scaling_with_many_heavy_tasks(self):
        """More slots must shorten a stage of many equal tasks."""
        tasks = [0.1] * 64
        four = ClusterModel(ClusterConfig.for_nodes(4)).stage_seconds(tasks, 0)
        eight = ClusterModel(ClusterConfig.for_nodes(8)).stage_seconds(tasks, 0)
        assert eight < four
