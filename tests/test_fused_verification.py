"""The fused filter+verify kernel agrees with the two-pass composition.

Property-based: random ranking pairs over a small domain (to force item
overlap) and thresholds across the whole scale, comparing the fused
single-pass kernel against the reference ``violates_position_filter`` +
``verify`` composition on the filter decision, the distance, and every
``JoinStats`` counter.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.types import JoinStats
from repro.joins.verification import (
    check_pair,
    fused_filter_verify,
    verify,
    violates_position_filter,
)
from repro.rankings.bounds import raw_threshold
from repro.rankings.ranking import Ranking

ks = st.integers(min_value=1, max_value=8)
thetas = st.floats(min_value=0.0, max_value=1.2, allow_nan=False)


@st.composite
def ranking_pairs(draw):
    """Two same-k rankings over a domain small enough to overlap often."""
    k = draw(ks)
    domain = list(range(k + draw(st.integers(min_value=0, max_value=4))))
    first = draw(st.permutations(domain))[:k]
    second = draw(st.permutations(domain))[:k]
    return Ranking(0, first), Ranking(1, second)


def reference_check_pair(tau, sigma, theta_raw, stats, use_position_filter):
    """The original two-pass composition, counters included."""
    stats.candidates += 1
    if use_position_filter and violates_position_filter(tau, sigma, theta_raw):
        stats.position_filtered += 1
        return None
    stats.verified += 1
    distance = verify(tau, sigma, theta_raw)
    if distance is not None:
        stats.results += 1
    return distance


@settings(max_examples=400, deadline=None)
@given(pair=ranking_pairs(), theta=thetas, use_filter=st.booleans())
def test_fused_agrees_with_composition(pair, theta, use_filter):
    tau, sigma = pair
    theta_raw = raw_threshold(theta, tau.k)

    fused_distance, fused_filtered = fused_filter_verify(
        tau, sigma, theta_raw, use_filter
    )
    assert fused_filtered == (
        use_filter and violates_position_filter(tau, sigma, theta_raw)
    )
    if not fused_filtered:
        assert fused_distance == verify(tau, sigma, theta_raw)


@settings(max_examples=400, deadline=None)
@given(pair=ranking_pairs(), theta=thetas, use_filter=st.booleans())
def test_check_pair_counters_unchanged(pair, theta, use_filter):
    tau, sigma = pair
    theta_raw = raw_threshold(theta, tau.k)

    expected_stats = JoinStats()
    expected = reference_check_pair(
        tau, sigma, theta_raw, expected_stats, use_filter
    )
    actual_stats = JoinStats()
    actual = check_pair(tau, sigma, theta_raw, actual_stats, use_filter)

    assert actual == expected
    assert vars(actual_stats) == vars(expected_stats)


@settings(max_examples=200, deadline=None)
@given(pair=ranking_pairs(), theta=thetas)
def test_fused_symmetry(pair, theta):
    """Footrule is symmetric; the fused distance must be too."""
    tau, sigma = pair
    theta_raw = raw_threshold(theta, tau.k)
    d_ab, _ = fused_filter_verify(tau, sigma, theta_raw, False)
    d_ba, _ = fused_filter_verify(sigma, tau, theta_raw, False)
    assert d_ab == d_ba


def test_fused_paper_example():
    """Table 2 rankings: known distances survive the fused path."""
    r1 = Ranking(1, [2, 5, 4, 3, 1])
    r2 = Ranking(2, [1, 4, 5, 9, 0])
    distance, filtered = fused_filter_verify(r1, r2, 1e9, True)
    assert not filtered
    assert distance == verify(r1, r2, 1e9)


def test_fused_single_item():
    same = Ranking(0, [7]), Ranking(1, [7])
    assert fused_filter_verify(*same, 0.0, True) == (0, False)
    different = Ranking(0, [7]), Ranking(1, [8])
    distance, filtered = fused_filter_verify(*different, 100.0, True)
    assert (distance, filtered) == (2, False)
