"""White-box tests of the VJ pipeline's building blocks."""

from repro.joins.types import JoinStats
from repro.joins.vj import make_kernels, order_rankings_rdd
from repro.minispark import Context
from repro.rankings import Ranking, item_frequencies


class TestOrderRankingsRdd:
    def _rankings(self):
        return [
            Ranking(0, [1, 2, 3]),
            Ranking(1, [2, 3, 4]),
            Ranking(2, [3, 4, 5]),
        ]

    def test_frequency_order_matches_local_ordering(self):
        ctx = Context(2)
        rankings = self._rankings()
        ordered = order_rankings_rdd(
            ctx, ctx.parallelize(rankings, 2)
        ).collect()
        frequencies = item_frequencies(rankings)
        for o in ordered:
            counts = [frequencies[item] for item, _rank in o.pairs]
            assert counts == sorted(counts)

    def test_ordering_runs_a_frequency_job(self):
        ctx = Context(2)
        order_rankings_rdd(ctx, ctx.parallelize(self._rankings(), 2)).collect()
        # At least two jobs: the reduceByKey collect + the final collect.
        assert len(ctx.metrics.jobs) >= 2

    def test_rank_order_prefix_skips_frequency_job(self):
        ctx = Context(2)
        ordered = order_rankings_rdd(
            ctx, ctx.parallelize(self._rankings(), 2), prefix="ordered"
        ).collect()
        assert len(ctx.metrics.jobs) == 1  # only the collect itself
        # Canonical order is the rank order.
        for o in ordered:
            assert [item for item, _rank in o.pairs] == list(o.ranking.items)
            assert [rank for _item, rank in o.pairs] == list(
                range(o.ranking.k)
            )


class TestMakeKernels:
    def _group(self):
        """A posting-list group: every member contains the key item 1."""
        from repro.rankings import order_dataset

        rankings = [
            Ranking(0, [1, 2, 3, 4, 5]),
            Ranking(1, [1, 2, 3, 4, 5]),
            Ranking(2, [9, 8, 7, 6, 1]),
        ]
        return order_dataset(rankings)

    def test_index_and_nl_kernels_agree(self):
        group = self._group()
        for variant in ("index", "nl"):
            kernel, _rs = make_kernels(
                variant, prefix_size=5, theta_raw=10, stats=JoinStats(),
                use_position_filter=True,
            )
            found = {pair for pair, _d in kernel(1, group)}
            assert found == {(0, 1)}, variant

    def test_rs_kernel_respects_threshold(self):
        group = self._group()
        _kernel, rs = make_kernels(
            "nl", prefix_size=5, theta_raw=10, stats=JoinStats(),
            use_position_filter=True,
        )
        found = {pair for pair, _d in rs(1, group[:1], group[1:])}
        assert found == {(0, 1)}

    def test_stats_shared_between_kernels(self):
        stats = JoinStats()
        kernel, rs = make_kernels(
            "nl", prefix_size=5, theta_raw=10, stats=stats,
            use_position_filter=True,
        )
        list(kernel(1, self._group()))
        list(rs(1, self._group()[:1], self._group()[1:]))
        assert stats.candidates > 0
