"""The compact shuffle path returns byte-identical results to legacy.

The compact token format changes *everything about what is shuffled* —
integer-encoded rankings, slim ``(rid, key_rank, prefix_codes)`` tokens, a
broadcast ranking store, and the rarest-common-prefix-item deduplication
rule — and nothing about what is returned.  These tests pin that contract
three ways:

* hypothesis equivalence: on adversarial tiny-domain datasets, compact ==
  legacy == brute force for vj, vj-nl, cl, and cl-p, across prefix
  schemes and the repartitioning branch, comparing full ``(i, j, d)``
  tuples (including which distances are ``None``), not just pair sets;
* the rarest-item rule really leaves nothing to deduplicate: running the
  (redundant) ``distinct_pairs`` shuffle anyway (``oracle_distinct``)
  changes nothing, and compact results contain no duplicate pairs;
* executor independence: serial, threads, and processes backends agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.joins import bruteforce_join, cl_join, vj_join
from repro.joins.compact import (
    first_common,
    pair_threshold,
    validate_token_format,
)
from repro.minispark import Context
from repro.rankings import Ranking, RankingDataset
from repro.rankings.encoding import (
    ItemEncoder,
    encode_ordered,
    encode_rank_ordered,
)
from repro.rankings.ordering import item_frequencies, order_ranking

K = 5
DOMAIN = list(range(11))


def datasets(min_size=2, max_size=14):
    ranking = st.permutations(DOMAIN).map(lambda p: tuple(p[:K]))
    return st.lists(ranking, min_size=min_size, max_size=max_size).map(
        lambda rows: RankingDataset(
            [Ranking(i, row) for i, row in enumerate(rows)]
        )
    )


thetas = st.sampled_from([0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.95, 1.0])


def _pairs(result):
    """Full result tuples, sorted — None distances must match too."""
    return sorted(
        result.pairs, key=lambda t: (t[0], t[1], t[2] is None, t[2] or 0.0)
    )


# ----------------------------------------------------- hypothesis: VJ family


@settings(max_examples=50, deadline=None)
@given(
    datasets(),
    thetas,
    st.sampled_from(["overlap", "ordered"]),
    st.sampled_from(["index", "nl"]),
)
def test_vj_compact_equals_legacy_and_bruteforce(
    dataset, theta, prefix, variant
):
    legacy = vj_join(
        Context(3), dataset, theta, prefix=prefix, variant=variant,
        token_format="legacy",
    )
    compact = vj_join(
        Context(3), dataset, theta, prefix=prefix, variant=variant,
        token_format="compact",
    )
    assert _pairs(compact) == _pairs(legacy)
    assert compact.pair_set() == bruteforce_join(dataset, theta).pair_set()


@settings(max_examples=40, deadline=None)
@given(datasets(), thetas, st.integers(min_value=2, max_value=6))
def test_vj_compact_repartitioned_equals_legacy(dataset, theta, delta):
    legacy = vj_join(
        Context(3), dataset, theta, variant="nl", partition_threshold=delta,
        token_format="legacy",
    )
    compact = vj_join(
        Context(3), dataset, theta, variant="nl", partition_threshold=delta,
        token_format="compact",
    )
    assert _pairs(compact) == _pairs(legacy)


@settings(max_examples=40, deadline=None)
@given(datasets(), thetas, st.sampled_from(["index", "nl"]))
def test_vj_compact_generates_each_pair_exactly_once(dataset, theta, variant):
    with_oracle = vj_join(
        Context(3), dataset, theta, variant=variant, token_format="compact",
        oracle_distinct=True,
    )
    without = vj_join(
        Context(3), dataset, theta, variant=variant, token_format="compact"
    )
    # distinct_pairs merges duplicates; if the rarest-item rule left any,
    # the undeduplicated run would return more records.
    assert _pairs(without) == _pairs(with_oracle)
    pairs = [(i, j) for i, j, _ in without.pairs]
    assert len(pairs) == len(set(pairs))


# ------------------------------------------------------- hypothesis: CL


@settings(max_examples=40, deadline=None)
@given(
    datasets(),
    thetas,
    st.sampled_from([0.0, 0.02, 0.05, 0.1]),
    st.sampled_from(["index", "nl"]),
)
def test_cl_compact_equals_legacy_and_bruteforce(
    dataset, theta, theta_c, variant
):
    theta_c = min(theta_c, theta)
    legacy = cl_join(
        Context(3), dataset, theta, theta_c=theta_c, variant=variant,
        token_format="legacy",
    )
    compact = cl_join(
        Context(3), dataset, theta, theta_c=theta_c, variant=variant,
        token_format="compact",
    )
    assert _pairs(compact) == _pairs(legacy)
    assert compact.pair_set() == bruteforce_join(dataset, theta).pair_set()


@settings(max_examples=30, deadline=None)
@given(datasets(), thetas, st.integers(min_value=2, max_value=6))
def test_clp_compact_equals_legacy(dataset, theta, delta):
    theta_c = min(0.03, theta)
    legacy = cl_join(
        Context(3), dataset, theta, theta_c=theta_c,
        partition_threshold=delta, token_format="legacy",
    )
    compact = cl_join(
        Context(3), dataset, theta, theta_c=theta_c,
        partition_threshold=delta, token_format="compact",
    )
    assert _pairs(compact) == _pairs(legacy)


@settings(max_examples=30, deadline=None)
@given(datasets(), thetas)
def test_cl_compact_no_duplicate_pairs(dataset, theta):
    result = cl_join(
        Context(3), dataset, theta, theta_c=min(0.03, theta),
        token_format="compact",
    )
    pairs = [(i, j) for i, j, _ in result.pairs]
    assert len(pairs) == len(set(pairs))


# --------------------------------------------------- executors (one shot)


@pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
@pytest.mark.parametrize(
    "algorithm, kwargs",
    [
        ("vj", dict(variant="index")),
        ("vj-nl", dict(variant="nl")),
        ("cl", dict()),
        ("cl-p", dict(partition_threshold=8)),
    ],
)
def test_compact_equals_legacy_on_every_executor(
    small_dblp, executor, algorithm, kwargs
):
    def run(token_format):
        ctx = Context(default_parallelism=4, executor=executor)
        if algorithm.startswith("vj"):
            return vj_join(
                ctx, small_dblp, 0.2, token_format=token_format, **kwargs
            )
        return cl_join(
            ctx, small_dblp, 0.2, token_format=token_format, **kwargs
        )

    assert _pairs(run("compact")) == _pairs(run("legacy"))


# ------------------------------------------------------------- unit tests


int_tuples = st.lists(
    st.integers(min_value=0, max_value=30), max_size=8
).map(lambda xs: tuple(sorted(set(xs))))


@settings(max_examples=200, deadline=None)
@given(int_tuples, int_tuples)
def test_first_common_is_min_of_intersection(a, b):
    shared = set(a) & set(b)
    expected = min(shared) if shared else None
    assert first_common(a, b) == expected


def test_item_encoder_codes_follow_canonical_order():
    frequencies = {"a": 3, "b": 1, "c": 1, "d": 2}
    encoder = ItemEncoder(frequencies)
    # ascending (frequency, item): b, c, d, a
    assert encoder.items == ("b", "c", "d", "a")
    assert [encoder.encode(x) for x in "bcda"] == [0, 1, 2, 3]
    assert [encoder.decode(code) for code in range(4)] == list("bcda")
    assert len(encoder) == 4
    with pytest.raises(KeyError):
        encoder.encode("zebra")


@settings(max_examples=60, deadline=None)
@given(datasets())
def test_encode_ordered_matches_legacy_canonical_order(dataset):
    frequencies = item_frequencies(dataset.rankings)
    encoder = ItemEncoder(frequencies)
    for ranking in dataset:
        legacy = order_ranking(ranking, frequencies)
        encoded = encode_ordered(ranking, encoder)
        assert [
            (encoder.decode(code), rank) for code, rank in encoded.pairs
        ] == list(legacy.pairs)
        assert encoded.ranking.items == tuple(
            encoder.encode(item) for item in ranking.items
        )


def test_encode_rank_ordered_keeps_rank_order():
    encoder = ItemEncoder({10: 5, 20: 1, 30: 3})
    encoded = encode_rank_ordered(Ranking(0, [10, 30, 20]), encoder)
    assert [rank for _code, rank in encoded.pairs] == [0, 1, 2]
    assert [encoder.decode(c) for c, _ in encoded.pairs] == [10, 30, 20]


def test_pair_threshold_matches_lemma_5_3():
    assert pair_threshold(True, True, 10.0, 2.0) == 10.0
    assert pair_threshold(True, False, 10.0, 2.0) == 12.0
    assert pair_threshold(False, True, 10.0, 2.0) == 12.0
    assert pair_threshold(False, False, 10.0, 2.0) == 14.0


def test_validate_token_format_rejects_unknown():
    assert validate_token_format("compact") == "compact"
    assert validate_token_format("legacy") == "legacy"
    with pytest.raises(ValueError, match="token_format"):
        validate_token_format("tight")
    with pytest.raises(ValueError, match="token_format"):
        vj_join(Context(3), RankingDataset([Ranking(0, [1, 2, 3])]), 0.1,
                token_format="tight")
