"""The random-centroid metric-partition baseline (Section 5.1's strawman)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins import bruteforce_join, metric_partition_join
from repro.minispark import Context
from repro.rankings import Ranking, RankingDataset


class TestCorrectness:
    @pytest.mark.parametrize("theta", (0.1, 0.2, 0.3, 0.4))
    def test_matches_bruteforce(self, small_dblp, theta):
        truth = bruteforce_join(small_dblp, theta).pair_set()
        result = metric_partition_join(Context(4), small_dblp, theta)
        assert result.pair_set() == truth

    @pytest.mark.parametrize("num_centroids", (1, 3, 10, 50))
    def test_any_centroid_count_is_exact(self, small_dblp, num_centroids):
        truth = bruteforce_join(small_dblp, 0.3).pair_set()
        result = metric_partition_join(
            Context(4), small_dblp, 0.3, num_centroids=num_centroids
        )
        assert result.pair_set() == truth

    def test_deterministic_per_seed(self, small_dblp):
        a = metric_partition_join(Context(4), small_dblp, 0.2, seed=3)
        b = metric_partition_join(Context(4), small_dblp, 0.2, seed=3)
        assert a.pair_set() == b.pair_set()
        assert a.stats.cluster_members == b.stats.cluster_members

    def test_via_facade(self, small_dblp):
        from repro import similarity_join

        truth = bruteforce_join(small_dblp, 0.25).pair_set()
        result = similarity_join(
            small_dblp, 0.25, algorithm="metric-partition"
        )
        assert result.pair_set() == truth

    def test_invalid_centroids(self, small_dblp):
        with pytest.raises(ValueError):
            metric_partition_join(
                Context(4), small_dblp, 0.2, num_centroids=0
            )


class TestReplicationBehaviour:
    def test_larger_theta_more_replication(self, small_dblp):
        small = metric_partition_join(Context(4), small_dblp, 0.1)
        large = metric_partition_join(Context(4), small_dblp, 0.4)
        assert large.stats.cluster_members >= small.stats.cluster_members

    def test_replication_at_least_dataset_size(self, small_dblp):
        """Every ranking has a home copy; borders only add to that."""
        result = metric_partition_join(Context(4), small_dblp, 0.2)
        assert result.stats.cluster_members >= len(small_dblp)

    def test_single_centroid_degenerates_to_one_region(self, small_dblp):
        result = metric_partition_join(
            Context(4), small_dblp, 0.2, num_centroids=1
        )
        assert result.stats.cluster_members == len(small_dblp)


DOMAIN = list(range(11))


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.permutations(DOMAIN).map(lambda p: tuple(p[:5])),
        min_size=2,
        max_size=12,
    ),
    st.sampled_from([0.05, 0.1, 0.2, 0.4, 0.6]),
    st.integers(min_value=1, max_value=6),
)
def test_exact_on_random_data(rows, theta, num_centroids):
    dataset = RankingDataset(
        [Ranking(i, row) for i, row in enumerate(rows)]
    )
    truth = bruteforce_join(dataset, theta).pair_set()
    result = metric_partition_join(
        Context(3), dataset, theta, num_centroids=num_centroids
    )
    assert result.pair_set() == truth
