"""Variable-length rankings (the footnote 1 extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rankings import (
    Ranking,
    footrule,
    footrule_variable,
    max_footrule_variable,
    max_length_difference,
    min_footrule_for_lengths,
    variable_length_join,
)


class TestFootruleVariable:
    def test_reduces_to_fixed_length(self, paper_rankings):
        tau1, tau2, _ = paper_rankings
        assert footrule_variable(tau1, tau2) == footrule(tau1, tau2) == 16

    def test_prefix_extension_minimum(self):
        """[1,2,3] vs [1,2,3,4,5]: extra items pay (pos - 3)."""
        short = Ranking(0, [1, 2, 3])
        long = Ranking(1, [1, 2, 3, 4, 5])
        # item 4 at pos 3: |3-3| = 0; item 5 at pos 4: |4-3| = 1.
        assert footrule_variable(short, long) == 1
        assert footrule_variable(short, long) == min_footrule_for_lengths(3, 5)

    def test_symmetry(self):
        a = Ranking(0, [1, 2, 3])
        b = Ranking(1, [3, 1, 5, 6])
        assert footrule_variable(a, b) == footrule_variable(b, a)

    def test_disjoint_reaches_maximum(self):
        a = Ranking(0, [1, 2])
        b = Ranking(1, [7, 8, 9])
        assert footrule_variable(a, b) == max_footrule_variable(2, 3)

    def test_max_footrule_variable_fixed_case(self):
        assert max_footrule_variable(5, 5) == 30  # k(k+1)

    def test_max_footrule_variable_validates(self):
        with pytest.raises(ValueError):
            max_footrule_variable(0, 3)


class TestLengthBounds:
    def test_min_footrule_for_lengths(self):
        assert min_footrule_for_lengths(5, 5) == 0
        assert min_footrule_for_lengths(3, 5) == 1
        assert min_footrule_for_lengths(3, 8) == 10

    def test_max_length_difference_inverts(self):
        for theta_raw in range(0, 60):
            d = max_length_difference(theta_raw)
            assert min_footrule_for_lengths(1, 1 + d) <= theta_raw
            # d + 1 would violate the bound (or the formula is not tight):
            assert min_footrule_for_lengths(1, 2 + d) > theta_raw or d >= 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            max_length_difference(-1)


def _variable_bruteforce(rankings, theta_raw):
    rankings = sorted(rankings, key=lambda r: r.rid)
    truth = set()
    for i, a in enumerate(rankings):
        for b in rankings[i + 1 :]:
            if footrule_variable(a, b) <= theta_raw:
                truth.add((a.rid, b.rid))
    return truth


class TestVariableLengthJoin:
    def _mixed_rankings(self):
        return [
            Ranking(0, [1, 2, 3]),
            Ranking(1, [1, 2, 3, 4]),
            Ranking(2, [1, 2, 3, 4, 5]),
            Ranking(3, [9, 8, 7]),
            Ranking(4, [2, 1, 3]),
            Ranking(5, [5, 4, 3, 2, 1, 0]),
        ]

    @pytest.mark.parametrize("theta_raw", (0, 2, 5, 10, 30, 100))
    def test_matches_bruteforce(self, theta_raw):
        rankings = self._mixed_rankings()
        truth = _variable_bruteforce(rankings, theta_raw)
        assert variable_length_join(rankings, theta_raw).pair_set() == truth

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            variable_length_join([], 5)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            variable_length_join(
                [Ranking(0, [1]), Ranking(0, [2])], 5
            )


DOMAIN = list(range(10))


@settings(max_examples=120, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.permutations(DOMAIN), st.integers(min_value=1, max_value=6)
        ),
        min_size=1,
        max_size=10,
    ),
    st.integers(min_value=0, max_value=80),
)
def test_variable_join_exact_on_random_mixed_lengths(rows, theta_raw):
    rankings = [
        Ranking(rid, permutation[:length])
        for rid, (permutation, length) in enumerate(rows)
    ]
    truth = _variable_bruteforce(rankings, theta_raw)
    assert variable_length_join(rankings, theta_raw).pair_set() == truth


@settings(max_examples=150)
@given(
    st.permutations(DOMAIN),
    st.integers(min_value=1, max_value=9),
    st.integers(min_value=1, max_value=9),
)
def test_min_footrule_for_lengths_is_a_lower_bound(permutation, k_a, k_b):
    a = Ranking(0, permutation[:k_a])
    b = Ranking(1, permutation[:k_b])
    assert footrule_variable(a, b) >= min_footrule_for_lengths(k_a, k_b)
