"""Caching semantics and shuffle memoization."""

from repro.minispark import Context


class TestCache:
    def test_cached_rdd_computes_once(self, ctx):
        calls = []

        def traced(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize(range(5), 2).map(traced).cache()
        rdd.collect()
        rdd.collect()
        assert len(calls) == 5

    def test_uncached_rdd_recomputes(self, ctx):
        calls = []

        def traced(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize(range(5), 2).map(traced)
        rdd.collect()
        rdd.collect()
        assert len(calls) == 10

    def test_unpersist_drops_cache(self, ctx):
        calls = []

        def traced(x):
            calls.append(x)
            return x

        rdd = ctx.parallelize(range(3), 1).map(traced).cache()
        rdd.collect()
        rdd.unpersist()
        rdd.collect()
        assert len(calls) == 6

    def test_cache_returns_self(self, ctx):
        rdd = ctx.parallelize([1], 1)
        assert rdd.cache() is rdd

    def test_cached_results_equal_fresh(self, ctx):
        rdd = ctx.parallelize(range(20), 4).map(lambda x: x * 3).cache()
        assert rdd.collect() == rdd.collect() == [x * 3 for x in range(20)]


class TestShuffleMemoization:
    def test_shuffle_map_stage_runs_once(self, ctx):
        calls = []

        def traced(x):
            calls.append(x)
            return (x % 2, x)

        grouped = ctx.parallelize(range(6), 2).map(traced).group_by_key()
        grouped.collect()
        grouped.collect()
        # The map side feeding the shuffle is materialized once and reused
        # (like Spark's shuffle files).
        assert len(calls) == 6

    def test_downstream_of_shuffle_recomputes(self, ctx):
        post_shuffle_calls = []

        def traced(kv):
            post_shuffle_calls.append(kv)
            return kv

        grouped = (
            ctx.parallelize([(1, 2)], 1).group_by_key().map(traced)
        )
        grouped.collect()
        grouped.collect()
        assert len(post_shuffle_calls) == 2
